// Package lockguard machine-checks the repo's "guarded by" comments.
//
// A struct field annotated
//
//	pending []entry // guarded by mu
//
// (trailing or doc comment, `guarded by <field>`) may only be accessed in
// statements dominated by a Lock/RLock of that mutex on the same base
// expression: j.pending demands j.mu held. The checker is a lexical
// abstract interpretation over each function body:
//
//   - x.mu.Lock()/RLock() raises the held count for key "x.mu";
//     Unlock()/RUnlock() lowers it; a *deferred* Unlock does not (it runs
//     at return, so the lock stays held for the rest of the body).
//   - if/else: branches are walked separately; branches that terminate
//     (return, break, continue, goto, panic) drop out of the merge; the
//     merge keeps a lock held only if every surviving branch holds it.
//   - loops: the body is walked with the entry state; the state after the
//     loop is the entry state (the body may run zero times).
//   - switch/select: every clause is walked from the entry state; the
//     result is the intersection of the entry state and every surviving
//     clause.
//   - function literals are walked with an empty held set: a closure may
//     run on another goroutine, so it inherits nothing.
//
// Escape hatches, because a lexical checker cannot see everything:
//
//   - methods whose name ends in "Locked" follow the repo's convention
//     that the caller holds the receiver's mutex; their bodies are
//     exempt (their call sites are still checked like any other code).
//   - `//crowdjoin:lockheld <why>` on the line before a function exempts
//     that function, with a mandatory justification.
//   - "fresh" locals — variables only ever assigned composite literals or
//     new() — are unshared by construction and exempt (the openJournal /
//     newJob constructor pattern).
//   - guards naming a path ("guarded by sched.mu") are recorded nowhere:
//     a cross-object guard is out of lexical reach, so such fields are
//     deliberately not checked rather than misreported.
package lockguard

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"crowdjoin/internal/vet/analysis"
)

// Analyzer is the lockguard check.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "check that fields annotated `// guarded by <mu>` are only accessed with that mutex held",
	Run:  run,
}

var guardRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

// guardKey identifies an annotated field by its struct type and name.
type guardKey struct {
	typ   *types.TypeName
	field string
}

// checker carries the per-package state through a walk.
type checker struct {
	pass   *analysis.Pass
	guards map[guardKey]string // annotated field -> mutex field name
	fresh  map[types.Object]bool
}

// lockState maps a mutex expression (types.ExprString of e.g. "j.mu") to
// its held count.
type lockState map[string]int

func (ls lockState) clone() lockState {
	c := make(lockState, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

// intersect keeps the minimum held count across both states.
func (ls lockState) intersect(o lockState) {
	for k, v := range ls {
		if ov := o[k]; ov < v {
			if ov <= 0 {
				delete(ls, k)
			} else {
				ls[k] = ov
			}
		}
	}
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass, guards: collectGuards(pass)}
	if len(c.guards) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		dirs := analysis.Directives(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			if d, ok := dirs.At("lockheld", fd.Pos()); ok {
				if d.Justification == "" {
					pass.Reportf(fd.Pos(), "//crowdjoin:lockheld needs a justification naming the lock the caller holds")
				}
				continue
			}
			c.fresh = freshLocals(pass, fd.Body)
			c.walkStmts(fd.Body.List, lockState{})
		}
	}
	return nil, nil
}

// collectGuards parses `guarded by <field>` comments off struct fields.
// Guards naming a dotted path are skipped (out of lexical reach).
func collectGuards(pass *analysis.Pass) map[guardKey]string {
	guards := map[guardKey]string{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					mu := guardName(field)
					if mu == "" || strings.Contains(mu, ".") {
						continue
					}
					for _, name := range field.Names {
						guards[guardKey{tn, name.Name}] = mu
					}
				}
			}
		}
	}
	return guards
}

// guardName extracts the mutex name from a field's doc or trailing comment.
func guardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// freshLocals finds variables whose every assignment is a composite
// literal or new(): unshared by construction.
func freshLocals(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	assigned := map[types.Object][]ast.Expr{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			assigned[obj] = append(assigned[obj], as.Rhs[i])
		}
		return true
	})
	fresh := map[types.Object]bool{}
	for obj, rhss := range assigned {
		ok := true
		for _, rhs := range rhss {
			if !isFreshExpr(rhs) {
				ok = false
				break
			}
		}
		if ok {
			fresh[obj] = true
		}
	}
	return fresh
}

// isFreshExpr reports whether e constructs a brand-new value.
func isFreshExpr(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := t.X.(*ast.CompositeLit)
		return t.Op.String() == "&" && ok
	case *ast.CallExpr:
		id, ok := t.Fun.(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// walkStmts interprets a statement list, mutating held in place, and
// reports whether control cannot fall off the end.
func (c *checker) walkStmts(stmts []ast.Stmt, held lockState) bool {
	for _, s := range stmts {
		if c.walkStmt(s, held) {
			return true
		}
	}
	return false
}

func (c *checker) walkStmt(s ast.Stmt, held lockState) bool {
	switch st := s.(type) {
	case *ast.ExprStmt:
		c.checkExpr(st.X, held)
		c.applyLockOps(st.X, held)
		return isPanicCall(st.X)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the remainder of the
		// body; other deferred calls have their args checked now and
		// FuncLit bodies walked cold.
		for _, arg := range st.Call.Args {
			c.checkExpr(arg, held)
		}
		if name, _ := lockOp(c.pass, st.Call); name == "" {
			c.checkExpr(st.Call.Fun, held)
		}
		return false
	case *ast.GoStmt:
		for _, arg := range st.Call.Args {
			c.checkExpr(arg, held)
		}
		c.checkExpr(st.Call.Fun, held)
		return false
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			c.checkExpr(e, held)
			c.applyLockOps(e, held)
		}
		for _, e := range st.Lhs {
			c.checkExpr(e, held)
		}
		return false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.checkExpr(e, held)
				return false
			}
			return true
		})
		return false
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			c.checkExpr(e, held)
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto leave this straight-line path
	case *ast.BlockStmt:
		return c.walkStmts(st.List, held)
	case *ast.LabeledStmt:
		return c.walkStmt(st.Stmt, held)
	case *ast.IfStmt:
		if st.Init != nil {
			c.walkStmt(st.Init, held)
		}
		c.checkExpr(st.Cond, held)
		thenHeld := held.clone()
		thenTerm := c.walkStmts(st.Body.List, thenHeld)
		if st.Else == nil {
			if !thenTerm {
				held.intersect(thenHeld)
			}
			return false
		}
		elseHeld := held.clone()
		elseTerm := c.walkStmt(st.Else, elseHeld)
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replace(held, elseHeld)
		case elseTerm:
			replace(held, thenHeld)
		default:
			replace(held, thenHeld)
			held.intersect(elseHeld)
		}
		return false
	case *ast.ForStmt:
		if st.Init != nil {
			c.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			c.checkExpr(st.Cond, held)
		}
		body := held.clone()
		c.walkStmts(st.Body.List, body)
		if st.Post != nil {
			c.walkStmt(st.Post, body)
		}
		return false
	case *ast.RangeStmt:
		c.checkExpr(st.X, held)
		body := held.clone()
		c.walkStmts(st.Body.List, body)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				c.walkStmt(sw.Init, held)
			}
			if sw.Tag != nil {
				c.checkExpr(sw.Tag, held)
			}
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		for _, cl := range clauses {
			var body []ast.Stmt
			switch cc := cl.(type) {
			case *ast.CaseClause:
				for _, e := range cc.List {
					c.checkExpr(e, held)
				}
				body = cc.Body
			case *ast.CommClause:
				if cc.Comm != nil {
					c.walkStmt(cc.Comm, held.clone())
				}
				body = cc.Body
			}
			clHeld := held.clone()
			if !c.walkStmts(body, clHeld) {
				held.intersect(clHeld)
			}
		}
		return false
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.checkExpr(e, held)
				return false
			}
			return true
		})
		return false
	}
}

// replace overwrites dst with src in place.
func replace(dst, src lockState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// lockOp classifies call as a mutex operation, returning the operation
// name and the key of the mutex expression ("j.mu").
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (op, key string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	return sel.Sel.Name, types.ExprString(sel.X)
}

// applyLockOps updates held for every mutex operation inside e (not
// descending into function literals).
func (c *checker) applyLockOps(e ast.Expr, held lockState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, key := lockOp(c.pass, call)
		switch op {
		case "Lock", "RLock":
			held[key]++
		case "Unlock", "RUnlock":
			if held[key] > 1 {
				held[key]--
			} else {
				delete(held, key)
			}
		}
		return true
	})
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// checkExpr reports guarded-field accesses in e that lack their mutex.
// Function literals are walked with an empty held set.
func (c *checker) checkExpr(e ast.Expr, held lockState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			c.walkStmts(fl.Body.List, lockState{})
			return false
		}
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		c.checkSelector(se, held)
		return true
	})
}

// checkSelector checks one x.f access against the guard table.
func (c *checker) checkSelector(se *ast.SelectorExpr, held lockState) {
	sel, ok := c.pass.TypesInfo.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return
	}
	recv := sel.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return
	}
	mu, ok := c.guards[guardKey{named.Obj(), se.Sel.Name}]
	if !ok {
		return
	}
	if obj := rootObj(c.pass, se.X); obj != nil && c.fresh[obj] {
		return
	}
	key := types.ExprString(se.X) + "." + mu
	if held[key] > 0 {
		return
	}
	c.pass.Reportf(se.Pos(), "%s.%s is guarded by %s.%s but accessed without holding it (lock it, rename the function *Locked, or annotate //crowdjoin:lockheld <why>)", types.ExprString(se.X), se.Sel.Name, types.ExprString(se.X), mu)
}

// rootObj resolves the leftmost identifier of an expression chain.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[t]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[t]
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.UnaryExpr:
			e = t.X
		default:
			return nil
		}
	}
}
