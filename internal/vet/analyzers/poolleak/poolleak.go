// Package poolleak machine-checks sync.Pool discipline in the hot paths.
//
// The candgen kernel (PR 8) and journal group-commit recycle scratch
// buffers through sync.Pool; a Get without a Put silently degrades the
// pool to an allocator, and pooled memory escaping into a returned value
// is a use-after-Put bug waiting for the next Get. Per function, the
// check:
//
//  1. finds acquisitions — direct (*sync.Pool).Get calls (optionally
//     behind a type assertion) and calls to source helpers, package
//     functions that Get from a pool and return the result (e.g.
//     candgen's getScratch);
//
//  2. requires each acquired variable to be released at least once —
//     a direct (*sync.Pool).Put or a call to a sink helper, a package
//     function that Puts one of its parameters (e.g. putScratch);
//     deferred releases count;
//
//  3. flags returns of the acquired variable or of a field selected from
//     it: pooled scratch must not alias into results.
//
// Deliberate ownership transfers are annotated
// `//crowdjoin:poolcarry <who releases and where>` on the acquisition.
// The check is lexical (one release anywhere in the function satisfies
// rule 2, all return paths are not separately proven); it is a tripwire
// for the common leak shapes, not an escape analysis.
package poolleak

import (
	"go/ast"
	"go/types"

	"crowdjoin/internal/vet/analysis"
)

// Analyzer is the poolleak check.
var Analyzer = &analysis.Analyzer{
	Name: "poolleak",
	Doc:  "require a matching Put for every sync.Pool.Get and keep pooled scratch out of returned values",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	sources := map[*types.Func]bool{}
	sinks := map[*types.Func]bool{}
	// Pass 1: classify this package's Get-returning source helpers and
	// Put-forwarding sink helpers.
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if fd.Type.Results != nil && len(fd.Type.Results.List) > 0 && callsPoolMethod(pass, fd.Body, "Get") != nil {
				sources[obj] = true
			}
			if arg := callsPoolMethod(pass, fd.Body, "Put"); arg != nil {
				if pobj := rootIdentObj(pass, arg); pobj != nil && isParamOf(pobj, fd, pass) {
					sinks[obj] = true
				}
			}
		}
	}
	// Pass 2: balance acquisitions against releases in every function.
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		dirs := analysis.Directives(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, sources, sinks, dirs)
		}
	}
	return nil, nil
}

// callsPoolMethod reports whether body contains a (*sync.Pool).<name>
// call, returning the first argument of the first such call (nil for Get,
// which has none — a non-nil *ast.Ident sentinel is not needed; Get
// callers only test for presence, so it returns a dummy non-nil expr).
func callsPoolMethod(pass *analysis.Pass, body *ast.BlockStmt, name string) ast.Expr {
	var found ast.Expr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPoolCall(pass, call, name) {
			return true
		}
		if len(call.Args) > 0 {
			found = call.Args[0]
		} else {
			found = call.Fun
		}
		return false
	})
	return found
}

// isPoolCall reports whether call invokes the named method of sync.Pool.
func isPoolCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// rootIdentObj resolves an expression to the object of its leftmost
// identifier (x, x.f, x[i] all resolve to x).
func rootIdentObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[t]
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.UnaryExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// isParamOf reports whether obj is one of fd's parameters.
func isParamOf(obj types.Object, fd *ast.FuncDecl, pass *analysis.Pass) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if pass.TypesInfo.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}

// acquisitionCall reports whether call acquires pooled memory: a direct
// Pool.Get or a call to a source helper.
func acquisitionCall(pass *analysis.Pass, call *ast.CallExpr, sources map[*types.Func]bool) bool {
	if isPoolCall(pass, call, "Get") {
		return true
	}
	var callee *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	return callee != nil && sources[callee]
}

// checkFunc balances one function's acquisitions against its releases.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, sources, sinks map[*types.Func]bool, dirs *analysis.FileDirectives) {
	type acq struct {
		pos      ast.Node
		carry    bool // //crowdjoin:poolcarry present
		released bool
		escaped  bool
	}
	acquired := map[types.Object]*acq{}

	// Acquisitions: x := pool.Get().(*T) / x := getScratch(...).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		rhs := as.Rhs[0]
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = ta.X
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !acquisitionCall(pass, call, sources) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return true
		}
		a := &acq{pos: as}
		if d, ok := dirs.At("poolcarry", as.Pos()); ok {
			if d.Justification == "" {
				pass.Reportf(as.Pos(), "//crowdjoin:poolcarry needs a justification saying who releases the pooled value")
			}
			a.carry = true
		}
		acquired[obj] = a
		return true
	})
	if len(acquired) == 0 {
		return
	}

	// Releases: pool.Put(x) / putScratch(x), deferred or not.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		releasing := isPoolCall(pass, call, "Put")
		if !releasing {
			var callee *types.Func
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee, _ = pass.TypesInfo.Uses[fun].(*types.Func)
			case *ast.SelectorExpr:
				callee, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
			}
			releasing = callee != nil && sinks[callee]
		}
		if !releasing {
			return true
		}
		for _, arg := range call.Args {
			if obj := rootIdentObj(pass, arg); obj != nil {
				if a, ok := acquired[obj]; ok {
					a.released = true
				}
			}
		}
		return true
	})

	// Escapes: return x / return x.field for an acquired x.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			e := res
			if se, ok := e.(*ast.SelectorExpr); ok {
				e = se.X
			}
			id, ok := e.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Uses[id]
			a, okA := acquired[obj]
			if !okA || a.carry {
				continue
			}
			if _, ok := dirs.At("poolcarry", ret.Pos()); ok {
				continue
			}
			a.escaped = true
			pass.Reportf(ret.Pos(), "pooled scratch escapes into the return value: the caller would hold memory the pool may hand out again — copy it, or annotate //crowdjoin:poolcarry <why>")
		}
		return true
	})

	for _, a := range acquired {
		if a.carry || a.released || a.escaped {
			continue
		}
		pass.Reportf(a.pos.Pos(), "sync.Pool value acquired here has no matching Put in this function: the pool degrades to plain allocation — release it (defer works), or annotate //crowdjoin:poolcarry <why>")
	}
}
