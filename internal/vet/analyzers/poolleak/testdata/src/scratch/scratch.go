// Package scratch exercises sync.Pool balance checking: direct
// Get/Put pairs, helper-mediated pairs, leaks, escapes, and annotated
// ownership transfers.
package scratch

import "sync"

type buf struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(buf) }}

// getBuf is a source helper: it Gets from the pool and returns the value.
func getBuf() *buf { return pool.Get().(*buf) }

// putBuf is a sink helper: it Puts its parameter back.
func putBuf(b *buf) {
	b.b = b.b[:0]
	pool.Put(b)
}

// direct Get with deferred direct Put: balanced.
func direct() int {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	return len(b.b)
}

// helper-mediated acquire and release: balanced.
func viaHelpers() int {
	b := getBuf()
	n := len(b.b)
	putBuf(b)
	return n
}

// leakDirect never returns its direct Get.
func leakDirect() int {
	b := pool.Get().(*buf) // want `no matching Put`
	return len(b.b)
}

// leakHelper never releases what the source helper handed it.
func leakHelper() int {
	b := getBuf() // want `no matching Put`
	return len(b.b)
}

// escapeValue returns the pooled value itself.
func escapeValue() *buf {
	b := getBuf()
	return b // want `pooled scratch escapes into the return value`
}

// escapeField returns memory aliasing the pooled value.
func escapeField() []byte {
	b := getBuf()
	defer putBuf(b)
	return b.b // want `pooled scratch escapes into the return value`
}

// copyOut copies out of the scratch before releasing: fine.
func copyOut() []byte {
	b := getBuf()
	defer putBuf(b)
	return append([]byte(nil), b.b...)
}

// carry transfers ownership deliberately, with a justification.
func carry() *buf {
	//crowdjoin:poolcarry caller releases via putBuf when the batch completes
	b := getBuf()
	return b
}

// bareCarry forgets the justification.
func bareCarry() *buf {
	//crowdjoin:poolcarry
	b := getBuf() // want `needs a justification`
	return b
}
