package poolleak

import (
	"testing"

	"crowdjoin/internal/vet/analysistest"
)

func TestScratch(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/src/scratch", "crowdjoin/internal/candgen")
}
