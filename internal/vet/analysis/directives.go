package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //crowdjoin: directive family is the escape hatch the crowdjoinvet
// analyzers honor. Every directive carries a mandatory justification after
// the name — an unexplained exemption is itself a finding. The names:
//
//	//crowdjoin:orderinvariant <why>  — maporder: this map range is
//	    order-invariant (commutative fold, or feeds a sort).
//	//crowdjoin:ctxbackground <why>   — ctxflow: this context.Background/
//	    TODO call is a sanctioned root (API compat shim, server base ctx).
//	//crowdjoin:lockheld <why>        — lockguard: the whole function runs
//	    with the relevant mutexes held by its callers (alternative to the
//	    fooLocked naming convention).
//	//crowdjoin:poolcarry <why>       — poolleak: this acquisition
//	    intentionally outlives the function (a later call returns it).
//
// A directive binds to the source line it sits on (trailing comment) or to
// the line directly below it (preceding comment line), matching how gofmt
// keeps comments attached to statements.

// Directive is one parsed //crowdjoin:<name> comment.
type Directive struct {
	Name          string
	Justification string
	Pos           token.Pos
}

const directivePrefix = "//crowdjoin:"

// FileDirectives indexes a file's //crowdjoin: directives by the source
// line they govern.
type FileDirectives struct {
	fset *token.FileSet
	// byLine maps a governed line number to the directives binding to it.
	byLine map[int][]Directive
}

// Directives parses every //crowdjoin: comment in f. Directives are
// line-exact comments (no leading space after //), the same lexical form
// as //go:build.
func Directives(fset *token.FileSet, f *ast.File) *FileDirectives {
	fd := &FileDirectives{fset: fset, byLine: make(map[int][]Directive)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			name, just, _ := strings.Cut(text, " ")
			d := Directive{Name: name, Justification: strings.TrimSpace(just), Pos: c.Pos()}
			line := fset.Position(c.Pos()).Line
			// The directive governs its own line (trailing-comment form) and
			// the next line (preceding-comment form).
			fd.byLine[line] = append(fd.byLine[line], d)
			fd.byLine[line+1] = append(fd.byLine[line+1], d)
		}
	}
	return fd
}

// At returns the named directive governing the line of pos, if any.
func (fd *FileDirectives) At(name string, pos token.Pos) (Directive, bool) {
	line := fd.fset.Position(pos).Line
	for _, d := range fd.byLine[line] {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}
