// Package analysis is a minimal, dependency-free re-statement of the
// golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass, Diagnostic —
// sized for this repo's own vet suite (cmd/crowdjoinvet). The container
// this repo builds in has no module proxy access, so vendoring x/tools is
// not an option; the five crowdjoinvet analyzers need only the core
// contract (parsed+typechecked files in, position-tagged diagnostics out),
// which fits in a page. Drivers live next door: internal/vet/unitchecker
// speaks the `go vet -vettool` protocol, internal/vet/analysistest runs
// testdata suites.
//
// Deliberately omitted from the x/tools surface: facts (no crowdjoinvet
// analyzer needs cross-package state), Requires/ResultOf (no analyzer
// depends on another), and per-analyzer flag sets (the suite is all-on;
// `-<name>=false` bool flags are handled by the unitchecker driver).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and as its -<name>
	// enable/disable flag. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph help text; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package. Diagnostics go through
	// pass.Report; the result value is unused by this driver (kept for
	// x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between one analyzer and one package being
// analyzed: the syntax, the type information, and the report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The crowdjoinvet analyzers enforce production invariants; tests poke
// internals on purpose (and `go vet ./...` analyzes test variants too), so
// every analyzer in the suite skips test files.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.File(pos).Name(), "_test.go")
}

// Validate checks the analyzer list for driver use: non-empty valid names,
// no duplicates, Run set.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a.Name == "" || strings.ContainsAny(a.Name, " \t\n=-") {
			return fmt.Errorf("analysis: invalid analyzer name %q", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q has no Run", a.Name)
		}
	}
	return nil
}

// DeterminismCritical reports whether pkgPath is one of the packages whose
// iteration order feeds byte-identical differential pins (the exhaustive
// reference diffs of candgen, the sharded-vs-unsharded label equality of
// core, the facade's resume contract): the root facade, the deduction
// core, candidate generation, the cluster graph, and the union-find.
// maporder flags map ranges only inside these.
func DeterminismCritical(pkgPath string) bool {
	switch pkgPath {
	case "crowdjoin",
		"crowdjoin/internal/core",
		"crowdjoin/internal/candgen",
		"crowdjoin/internal/clustergraph",
		"crowdjoin/internal/unionfind":
		return true
	}
	return false
}
