package crowdjoin

import (
	"fmt"

	"crowdjoin/internal/candgen"
	"crowdjoin/internal/dataset"
)

// Matcher computes machine likelihoods and candidate pairs from record
// texts — the machine half of the hybrid workflow.
type Matcher struct {
	// Threshold is the minimum likelihood for a candidate pair, in (0, 1].
	Threshold float64
	// UseIDF weights token overlap by inverse document frequency instead
	// of plain Jaccard.
	UseIDF bool
}

// Candidates returns every pair of texts whose similarity reaches the
// threshold, sorted by likelihood descending with dense pair IDs — ready
// for ExpectedOrder and the labelers. Object i is texts[i].
func (m Matcher) Candidates(texts []string) ([]Pair, error) {
	d := textsToDataset(texts, nil)
	return m.candidates(d)
}

// CandidatesAcross returns candidate pairs spanning the two sources of a
// join (no within-source pairs). Objects 0..len(a)-1 are a's texts and
// len(a)..len(a)+len(b)-1 are b's.
func (m Matcher) CandidatesAcross(a, b []string) ([]Pair, error) {
	d := textsToDataset(a, b)
	return m.candidates(d)
}

func (m Matcher) candidates(d *dataset.Dataset) ([]Pair, error) {
	if m.Threshold <= 0 || m.Threshold > 1 {
		return nil, fmt.Errorf("crowdjoin: Matcher.Threshold %v outside (0,1]", m.Threshold)
	}
	w := candgen.Unweighted
	if m.UseIDF {
		w = candgen.IDFWeighted
	}
	// Candidates auto-routes to prefix filtering (weighted or unweighted)
	// whenever the threshold admits it; all routes return identical results
	// (see TestCandidatePathsAgreeOnRandomDatasets).
	return candgen.Candidates(d, candgen.NewScorer(d, w), m.Threshold)
}

// Similarity returns the likelihood the matcher assigns to two texts. It
// takes the lightweight two-record path (no dataset or scorer is built),
// which computes the identical value to scoring the pair inside a
// two-record corpus.
func (m Matcher) Similarity(a, b string) float64 {
	w := candgen.Unweighted
	if m.UseIDF {
		w = candgen.IDFWeighted
	}
	return candgen.TextSimilarity(a, b, w)
}

// cascadeSession caches the tokenized dataset and scorer across the stages
// of a multi-threshold cascade (WithCascade): descending a threshold reuses
// the token arenas, the rare-first rank order, and the pooled join scratch
// instead of re-deriving them per stage.
type cascadeSession struct {
	d *dataset.Dataset
	s *candgen.Scorer
}

func (m Matcher) newCascadeSession(a, b []string, bipartite bool) (*cascadeSession, error) {
	if m.Threshold <= 0 || m.Threshold > 1 {
		return nil, fmt.Errorf("crowdjoin: Matcher.Threshold %v outside (0,1]", m.Threshold)
	}
	if !bipartite {
		b = nil
	}
	d := textsToDataset(a, b)
	w := candgen.Unweighted
	if m.UseIDF {
		w = candgen.IDFWeighted
	}
	return &cascadeSession{d: d, s: candgen.NewScorer(d, w)}, nil
}

// band returns the [lo, hi) similarity band of the session's dataset,
// restricted by keep (see candgen.BandCandidates).
func (cs *cascadeSession) band(lo, hi float64, keep func(a, b int32) bool) ([]Pair, error) {
	return candgen.BandCandidates(cs.d, cs.s, lo, hi, keep)
}

// sortPairsByLikelihood re-sorts pairs likelihood-descending (ties by
// object ids) — the order every candidate generator emits.
func sortPairsByLikelihood(pairs []Pair) { candgen.SortByLikelihood(pairs) }

// textsToDataset wraps raw texts in the internal dataset representation.
// Ground-truth entities are unknown to the facade, so every record carries
// entity 0; nothing in candidate generation reads them.
func textsToDataset(a, b []string) *dataset.Dataset {
	d := &dataset.Dataset{Name: "user", NumEntities: 1, Bipartite: b != nil}
	add := func(texts []string, source string) []int32 {
		ids := make([]int32, len(texts))
		for i, t := range texts {
			id := int32(len(d.Records))
			d.Records = append(d.Records, dataset.Record{
				ID:     id,
				Source: source,
				Fields: []dataset.Field{{Name: "text", Value: t}},
			})
			ids[i] = id
		}
		return ids
	}
	d.SourceA = add(a, "a")
	if b != nil {
		d.SourceB = add(b, "b")
	} else {
		d.SourceA = nil
	}
	return d
}
