package crowdjoin

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// stubPlatform is an inner Platform that never has work — every pair the
// journalPlatform forwards to it is a test failure.
type stubPlatform struct {
	t         *testing.T
	published int
}

func (s *stubPlatform) Publish(ps []Pair) {
	s.published += len(ps)
	s.t.Errorf("journaled pair forwarded to the real platform: %v", ps)
}
func (s *stubPlatform) NextLabel() (Pair, Label, bool) { return Pair{}, Unlabeled, false }
func (s *stubPlatform) Available() int                 { return 0 }

// TestJournalPlatformCompactsOnDrain: served replay entries must be
// released as the session publishes and drains — the ready FIFO never
// accumulates the whole session's replay volume, and the consumed prefix
// never stays pinned behind the head index.
func TestJournalPlatformCompactsOnDrain(t *testing.T) {
	const rounds, perRound, numObjects = 64, 8, 1024
	var journal strings.Builder
	journal.WriteString(journalHeader + "\n")
	fmt.Fprintf(&journal, "objects %d\n", numObjects)
	var published [][]Pair
	id := 0
	for r := 0; r < rounds; r++ {
		var round []Pair
		for i := 0; i < perRound; i++ {
			a, b := int32(2*id), int32(2*id+1)
			fmt.Fprintf(&journal, "m %d %d\n", a, b)
			round = append(round, Pair{ID: id, A: a, B: b})
			id++
		}
		published = append(published, round)
	}
	rw := struct {
		io.Reader
		io.Writer
	}{strings.NewReader(journal.String()), &bytes.Buffer{}}
	jrn, err := openJournal(rw, numObjects, nil)
	if err != nil {
		t.Fatal(err)
	}
	jp := &journalPlatform{inner: &stubPlatform{t: t}, jrn: jrn}
	for r, round := range published {
		jp.Publish(round)
		if jp.head != 0 {
			t.Fatalf("round %d: head = %d after Publish, want 0 (consumed prefix pinned)", r, jp.head)
		}
		if len(jp.ready) > 2*perRound {
			t.Fatalf("round %d: ready holds %d entries after Publish, want ≤ %d (FIFO grows for the whole session)",
				r, len(jp.ready), 2*perRound)
		}
		// Leave one answer buffered on even rounds and catch it up on odd
		// ones — crossing a Publish with a non-empty FIFO exercises the
		// compaction path.
		drain := len(round)
		if r%2 == 0 {
			drain--
		} else {
			drain++
		}
		for i := 0; i < drain; i++ {
			if _, _, ok := jp.NextLabel(); !ok {
				t.Fatalf("round %d: replay FIFO dry after %d of %d", r, i, drain)
			}
		}
	}
	for jp.head < len(jp.ready) {
		jp.NextLabel()
	}
	if len(jp.ready) != 0 || jp.head != 0 {
		t.Fatalf("after full drain: len(ready)=%d head=%d, want 0/0", len(jp.ready), jp.head)
	}
	if got := jrn.replayedCount(); got != rounds*perRound {
		t.Fatalf("replayed %d answers, want %d", got, rounds*perRound)
	}
}

// TestJournalRecordConcurrent hammers journalState.record from many
// goroutines sharing one journal — the WithConcurrency shard setup. The
// narrowed critical section (format under mu, write via the pending-buffer
// flusher) must still produce a parseable journal: header first, objects
// fingerprint present, every entry intact on its own line, no interleaved
// or torn writes.
func TestJournalRecordConcurrent(t *testing.T) {
	const workers = 8
	const perWorker = 200
	numObjects := 2 * workers * perWorker
	var buf bytes.Buffer
	jrn, err := openJournal(&buf, numObjects, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i
				l := Matching
				if id%3 == 0 {
					l = NonMatching
				}
				jrn.record(Pair{A: int32(2 * id), B: int32(2*id + 1)}, l)
			}
		}(w)
	}
	wg.Wait()
	content := buf.String()
	if !strings.HasPrefix(content, journalHeader+"\n") {
		t.Fatalf("journal does not start with the header:\n%.120s", content)
	}
	if !strings.Contains(content, fmt.Sprintf("objects %d\n", numObjects)) {
		t.Fatalf("objects fingerprint missing:\n%.200s", content)
	}
	reopened, err := openJournal(bytes.NewBufferString(content), numObjects, nil)
	if err != nil {
		t.Fatalf("concurrently written journal does not reopen: %v", err)
	}
	if got, want := len(reopened.answers), workers*perWorker; got != want {
		t.Fatalf("reopened journal holds %d answers, want %d", got, want)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			id := w*perWorker + i
			want := Matching
			if id%3 == 0 {
				want = NonMatching
			}
			if got, ok := reopened.answers[pairKey{int32(2 * id), int32(2*id + 1)}]; !ok || got != want {
				t.Fatalf("entry for pair (%d, %d) = (%v, %v), want (%v, true)", 2*id, 2*id+1, got, ok, want)
			}
		}
	}
}
