package crowdjoin_test

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"crowdjoin"
)

// lockedOracle makes an oracle safe for the concurrent shard goroutines of
// a WithConcurrency(k > 1) session.
type lockedOracle struct {
	mu    sync.Mutex
	inner crowdjoin.Oracle
	asked int
}

func (o *lockedOracle) Label(p crowdjoin.Pair) crowdjoin.Label {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.asked++
	return o.inner.Label(p)
}

// runJoin builds and runs one session, failing the test on any error.
func runJoin(t *testing.T, opts ...crowdjoin.JoinOption) *crowdjoin.JoinResult {
	t.Helper()
	j, err := crowdjoin.NewJoin(opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWithConcurrencyMatchesUnsharded is the session-level differential
// suite: WithConcurrency(1) must be byte-identical to the default path,
// and WithConcurrency(k > 1) must reproduce the same labels, crowdsourced
// flags, counters, clusters, and (for parallel) round series, across
// strategies and crowds.
func TestWithConcurrencyMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	strategies := []crowdjoin.Strategy{
		crowdjoin.SequentialStrategy,
		crowdjoin.ParallelStrategy,
		crowdjoin.OneToOneStrategy,
	}
	for trial := 0; trial < 12; trial++ {
		numObjects, pairs, entity := randomJoinCase(rng)
		oracle := crowdjoin.Oracle(&crowdjoin.TruthOracle{Entity: entity})
		if trial%3 == 2 {
			oracle = flakyOracle()
		}
		for _, strat := range strategies {
			base := runJoin(t,
				crowdjoin.WithPairs(numObjects, pairs),
				crowdjoin.WithStrategy(strat),
				crowdjoin.WithOracle(oracle),
			)
			one := runJoin(t,
				crowdjoin.WithPairs(numObjects, pairs),
				crowdjoin.WithStrategy(strat),
				crowdjoin.WithOracle(oracle),
				crowdjoin.WithConcurrency(1),
			)
			if !reflect.DeepEqual(base, one) {
				t.Fatalf("trial %d %v: WithConcurrency(1) is not byte-identical to the default", trial, strat)
			}
			for _, k := range []int{2, 5} {
				sharded := runJoin(t,
					crowdjoin.WithPairs(numObjects, pairs),
					crowdjoin.WithStrategy(strat),
					crowdjoin.WithOracle(&lockedOracle{inner: oracle}),
					crowdjoin.WithConcurrency(k),
				)
				if sharded.Components <= 0 {
					t.Fatalf("trial %d %v k=%d: Components = %d", trial, strat, k, sharded.Components)
				}
				if !reflect.DeepEqual(base.Labels, sharded.Labels) ||
					!reflect.DeepEqual(base.Crowdsourced, sharded.Crowdsourced) ||
					base.NumCrowdsourced != sharded.NumCrowdsourced ||
					base.NumDeduced != sharded.NumDeduced ||
					base.Conflicts != sharded.Conflicts ||
					base.NumConstraintDeduced != sharded.NumConstraintDeduced ||
					!reflect.DeepEqual(base.RoundSizes, sharded.RoundSizes) {
					t.Fatalf("trial %d %v k=%d: sharded result diverged from unsharded", trial, strat, k)
				}
				baseClusters, err := base.Clusters()
				if err != nil {
					t.Fatal(err)
				}
				shardClusters, err := sharded.Clusters()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(baseClusters, shardClusters) {
					t.Fatalf("trial %d %v k=%d: clusters diverged", trial, strat, k)
				}
			}
		}
	}
}

// TestWithConcurrencyPlatform pins the sharded platform path at the
// session level: same labels and costs as the unsharded platform run.
func TestWithConcurrencyPlatform(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 6; trial++ {
		numObjects, pairs, entity := randomJoinCase(rng)
		truth := &crowdjoin.TruthOracle{Entity: entity}
		run := func(k int, instant bool) *crowdjoin.JoinResult {
			return runJoin(t,
				crowdjoin.WithPairs(numObjects, pairs),
				crowdjoin.WithStrategy(crowdjoin.PlatformStrategy),
				crowdjoin.WithPlatform(crowdjoin.NewSimulatedCrowd(truth, crowdjoin.SelectAscendingLikelihood, nil)),
				crowdjoin.WithInstantDecisions(instant),
				crowdjoin.WithConcurrency(k),
			)
		}
		for _, instant := range []bool{false, true} {
			base := run(1, instant)
			sharded := run(4, instant)
			if !reflect.DeepEqual(base.Labels, sharded.Labels) ||
				base.NumCrowdsourced != sharded.NumCrowdsourced ||
				base.NumDeduced != sharded.NumDeduced {
				t.Fatalf("trial %d instant=%v: sharded platform diverged (crowdsourced %d vs %d)",
					trial, instant, base.NumCrowdsourced, sharded.NumCrowdsourced)
			}
		}
	}
}

// TestShardedJournalResume: a sharded session cancelled mid-run leaves a
// journal that a fresh sharded session resumes from — every journaled
// answer is replayed to its component, zero pairs are re-crowdsourced, and
// the final result matches an uninterrupted unsharded run.
func TestShardedJournalResume(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 8; trial++ {
		numObjects, pairs, entity := randomJoinCase(rng)
		truth := &crowdjoin.TruthOracle{Entity: entity}

		want := runJoin(t,
			crowdjoin.WithPairs(numObjects, pairs),
			crowdjoin.WithStrategy(crowdjoin.ParallelStrategy),
			crowdjoin.WithOracle(truth),
		)
		if want.NumCrowdsourced < 2 {
			continue
		}

		// First sharded session: cancel partway through the answers.
		jrn := &bytes.Buffer{}
		ctx, cancel := context.WithCancel(context.Background())
		stopAfter := 1 + rng.Intn(want.NumCrowdsourced-1)
		var mu sync.Mutex
		seen := 0
		j1, err := crowdjoin.NewJoin(
			crowdjoin.WithPairs(numObjects, pairs),
			crowdjoin.WithStrategy(crowdjoin.ParallelStrategy),
			crowdjoin.WithOracle(&lockedOracle{inner: truth}),
			crowdjoin.WithConcurrency(3),
			crowdjoin.WithJournal(jrn),
			crowdjoin.WithProgress(func(e crowdjoin.Event) {
				if e.Kind == crowdjoin.EventPairCrowdsourced {
					mu.Lock()
					if seen++; seen == stopAfter {
						cancel()
					}
					mu.Unlock()
				}
			}),
		)
		if err != nil {
			t.Fatal(err)
		}
		partial, err := j1.Run(ctx)
		cancel()
		if err != nil && err != context.Canceled {
			t.Fatalf("trial %d: first run: %v", trial, err)
		}
		if partial == nil {
			t.Fatalf("trial %d: first run returned no result", trial)
		}

		// Resume with a fresh sharded session over the same journal: the
		// journaled answers must replay (routed to their shards) and only
		// the remainder may reach the crowd.
		counter := &lockedOracle{inner: truth}
		j2, err := crowdjoin.NewJoin(
			crowdjoin.WithPairs(numObjects, pairs),
			crowdjoin.WithStrategy(crowdjoin.ParallelStrategy),
			crowdjoin.WithOracle(counter),
			crowdjoin.WithConcurrency(3),
			crowdjoin.WithJournal(jrn),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := j2.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Labels, res.Labels) ||
			want.NumCrowdsourced != res.NumCrowdsourced ||
			want.NumDeduced != res.NumDeduced {
			t.Fatalf("trial %d: resumed sharded run diverged from uninterrupted run", trial)
		}
		if res.Replayed == 0 {
			t.Fatalf("trial %d: resume replayed nothing (journal had %d answers)", trial, seen)
		}
		if counter.asked+res.Replayed != want.NumCrowdsourced {
			t.Fatalf("trial %d: crowd asked %d + replayed %d != %d crowdsourced",
				trial, counter.asked, res.Replayed, want.NumCrowdsourced)
		}
		if counter.asked > want.NumCrowdsourced-res.Replayed {
			t.Fatalf("trial %d: resume re-crowdsourced journaled pairs", trial)
		}
	}
}

// TestWithConcurrencyValidation: bad k and incompatible strategies are
// rejected at NewJoin.
func TestWithConcurrencyValidation(t *testing.T) {
	truth := crowdjoin.OracleFunc(func(crowdjoin.Pair) crowdjoin.Label { return crowdjoin.NonMatching })
	pairs := []crowdjoin.Pair{{ID: 0, A: 0, B: 1, Likelihood: 0.5}}
	if _, err := crowdjoin.NewJoin(
		crowdjoin.WithPairs(2, pairs),
		crowdjoin.WithOracle(truth),
		crowdjoin.WithConcurrency(0),
	); err == nil {
		t.Error("WithConcurrency(0) accepted")
	}
	if _, err := crowdjoin.NewJoin(
		crowdjoin.WithPairs(2, pairs),
		crowdjoin.WithOracle(truth),
		crowdjoin.WithStrategy(crowdjoin.BudgetStrategy(1, 0.5)),
		crowdjoin.WithConcurrency(2),
	); err == nil {
		t.Error("WithConcurrency(2) with BudgetStrategy accepted")
	}
	if _, err := crowdjoin.NewJoin(
		crowdjoin.WithPairs(2, pairs),
		crowdjoin.WithOracle(truth),
		crowdjoin.WithStrategy(crowdjoin.BudgetStrategy(1, 0.5)),
		crowdjoin.WithConcurrency(1),
	); err != nil {
		t.Errorf("WithConcurrency(1) with BudgetStrategy rejected: %v", err)
	}
}
