package crowdjoin

import "crowdjoin/internal/crowd"

// AMT simulation surface: a discrete-event model of a Mechanical-Turk-style
// platform with HIT batching, replicated assignments, majority voting,
// qualification tests, and worker latency/error models. It implements
// Platform, so it plugs directly into LabelOnPlatform.
type (
	// AMTSimulator is the simulated platform.
	AMTSimulator = crowd.Platform
	// AMTConfig parameterizes the simulation.
	AMTConfig = crowd.Config
	// ErrorModel decides how one worker answers one pair.
	ErrorModel = crowd.ErrorModel
	// PerfectWorkers always answer correctly.
	PerfectWorkers = crowd.PerfectModel
	// UniformErrorWorkers flip answers with a fixed probability.
	UniformErrorWorkers = crowd.UniformErrorModel
	// SimilarityConfusedWorkers err toward what pairs look like: lookalike
	// non-matches draw false positives and dissimilar matches draw false
	// negatives.
	SimilarityConfusedWorkers = crowd.SimilarityConfusedModel
)

// DefaultAMTConfig mirrors the paper's AMT setup: 20-pair HITs, 3
// assignments with majority vote, 2-cent rewards, qualification tests.
func DefaultAMTConfig() AMTConfig { return crowd.DefaultConfig() }

// NewAMTSimulator builds a simulated platform whose correct answers come
// from truth, distorted per cfg.Model.
func NewAMTSimulator(truth Truth, cfg AMTConfig) (*AMTSimulator, error) {
	return crowd.NewPlatform(truth, cfg)
}

// ReplayHITsSequentially replays recorded HITs one at a time on a fresh
// simulated platform and returns the completion time in hours — the
// non-parallel baseline of the paper's Table 1.
func ReplayHITsSequentially(hits [][]Pair, truth Truth, cfg AMTConfig) (float64, error) {
	return crowd.RunHITsSequentially(hits, truth, cfg)
}
