package crowdjoin

import (
	"errors"
	"fmt"
	"sync"

	"crowdjoin/internal/core"
)

// Similarity-banded triage at the session level: WithTriage splits the
// candidate band by the machine similarity the candidate generator already
// computed. Pairs at or above the accept band are answered Matching by the
// machine, pairs at or below the reject band answered NonMatching, and only
// the uncertain band in between ever reaches the configured crowd backend.
// Machine answers flow through the standard drivers exactly like crowd
// answers — the deduction engine still arbitrates, and a banded pair that is
// deduced before the driver would have asked it is simply never consulted —
// but they are reported as EventPairTriaged instead of EventPairCrowdsourced,
// excluded from NumCrowdsourced, and never journaled (they are deterministic
// from the input and the bands, so a resumed session re-derives them for
// free).

// TriageBands re-exports the band configuration (see WithTriage).
type TriageBands = core.TriageBands

// WithTriage enables similarity-banded triage: pairs with likelihood ≥
// acceptAbove are machine-labeled Matching, pairs ≤ rejectBelow are
// machine-labeled NonMatching, and only the band in between is
// crowdsourced. Pass rejectBelow = 0 for accept-only triage (no candidate
// has likelihood ≤ 0). Requires 0 ≤ rejectBelow < acceptAbove ≤ 1;
// incompatible with BudgetStrategy (the budget meters crowd questions, and
// machine answers would consume it).
func WithTriage(acceptAbove, rejectBelow float64) JoinOption {
	return func(j *Join) {
		b := core.TriageBands{AcceptAbove: acceptAbove, RejectBelow: rejectBelow}
		if !b.Enabled() {
			j.setErr(errors.New("crowdjoin: WithTriage(0, 0) configures no bands; omit the option to disable triage"))
			return
		}
		if err := b.Validate(); err != nil {
			j.setErr(fmt.Errorf("crowdjoin: WithTriage: want 0 <= rejectBelow < acceptAbove <= 1, got accept above %v, reject below %v", acceptAbove, rejectBelow))
			return
		}
		j.triage = b
	}
}

// Router selects how a component-sharded session schedules its shards'
// crowd work (see WithRouter).
type Router uint8

const (
	// LargestFirstRouter is the default: k whole-component workers, largest
	// components first. Exactly the scheduling every release so far used.
	LargestFirstRouter Router = iota
	// BalancedRouter models the crowd as k concurrent workers answering one
	// question at a time and stride-schedules every shard's published rounds
	// across them, weighting each shard's share by its remaining-unlabeled
	// pairs. A giant component's big rounds spread over all k workers while
	// small components' instant decisions overlap its crowd latency instead
	// of queueing behind it. Labels and crowd cost are identical to
	// LargestFirstRouter for order-independent crowds.
	BalancedRouter
)

// String implements fmt.Stringer.
func (r Router) String() string {
	switch r {
	case LargestFirstRouter:
		return "largest-first"
	case BalancedRouter:
		return "balanced"
	default:
		return "Router(?)"
	}
}

// WithRouter selects the crowd router for component-sharded sessions
// (default LargestFirstRouter). BalancedRouter requires ParallelStrategy
// with WithConcurrency > 1 — it reschedules parallel rounds across modeled
// crowd workers, which has no meaning for an unsharded or non-round-based
// session.
func WithRouter(r Router) JoinOption {
	return func(j *Join) {
		if r != LargestFirstRouter && r != BalancedRouter {
			j.setErr(fmt.Errorf("crowdjoin: WithRouter(%d): unknown router", r))
			return
		}
		j.router = r
	}
}

// WithCascade enables the multi-threshold blocking cascade: candidates are
// generated at thresholds[0] first and the join runs over that band; then,
// for each further (strictly descending) threshold, candidate generation
// descends only inside still-unresolved clusters — records already settled
// into an entity (joined by a Matching label) stop generating new candidate
// pairs — and the join re-runs over the accumulated band. The session's
// matcher threshold is the final floor: if thresholds ends above it, it is
// descended to implicitly. Earlier stages' crowd answers replay from the
// session journal, so each stage pays only for its new band.
//
// Requires WithTexts or WithTextsAcross (the cascade drives candidate
// generation, so precomputed WithPairs input has nothing to cascade);
// incompatible with BudgetStrategy and with streaming sessions (Append).
func WithCascade(thresholds ...float64) JoinOption {
	return func(j *Join) {
		if len(thresholds) == 0 {
			j.setErr(errors.New("crowdjoin: WithCascade requires at least one threshold"))
			return
		}
		prev := 1.0001
		for _, t := range thresholds {
			if t <= 0 || t > 1 {
				j.setErr(fmt.Errorf("crowdjoin: WithCascade threshold %v outside (0,1]", t))
				return
			}
			if t >= prev {
				j.setErr(fmt.Errorf("crowdjoin: WithCascade thresholds must be strictly descending, got %v", thresholds))
				return
			}
			prev = t
		}
		j.cascade = append([]float64(nil), thresholds...)
	}
}

// triageState tracks, for one Run, which pairs the machine answered. The
// wrappers below mark pairs as they answer them; the Run's progress filter
// rewrites the driver's EventPairCrowdsourced into EventPairTriaged for
// marked pairs, and fill reconciles the result counters at the end.
type triageState struct {
	bands core.TriageBands
	mu    sync.Mutex
	// marked[id] is set once the machine has answered pair id in place of
	// the crowd. The driver may still discard that answer (cancellation, a
	// misbehaving sibling oracle in the same batch), so the result-facing
	// Triaged flag is marked ∧ recorded-by-the-driver.
	marked []bool
}

func newTriageState(bands core.TriageBands, numPairs int) *triageState {
	return &triageState{bands: bands, marked: make([]bool, numPairs)}
}

// answer consults the bands for p. ok reports that the machine answered;
// the pair is marked so the progress filter and fill can attribute it.
func (t *triageState) answer(p Pair) (Label, bool) {
	l := t.bands.Classify(p.Likelihood)
	if l == Unlabeled {
		return l, false
	}
	t.mu.Lock()
	t.marked[p.ID] = true
	t.mu.Unlock()
	return l, true
}

func (t *triageState) isMarked(id int) bool {
	t.mu.Lock()
	m := t.marked[id]
	t.mu.Unlock()
	return m
}

// progressFilter wraps a session progress callback: driver events for
// machine-answered pairs surface as EventPairTriaged. The driver emits
// EventPairCrowdsourced precisely when it records an answer, so the
// translated stream matches the final Triaged flags one to one.
func (t *triageState) progressFilter(inner func(Event)) func(Event) {
	if inner == nil {
		return nil
	}
	return func(e Event) {
		if e.Kind == core.EventPairCrowdsourced && t.isMarked(e.Pair.ID) {
			e.Kind = core.EventPairTriaged
		}
		inner(e)
	}
}

// fill reconciles the run result: machine-answered pairs leave the
// crowdsourced ledger and land in Triaged/TriageAccepted/TriageRejected.
// The machine's answer is deterministic from the likelihood, so the
// accept/reject split is re-derived from the order rather than tracked.
func (t *triageState) fill(res *JoinResult) {
	tr := make([]bool, len(res.Order))
	t.mu.Lock()
	for _, p := range res.Order {
		if t.marked[p.ID] && res.Crowdsourced != nil && res.Crowdsourced[p.ID] {
			tr[p.ID] = true
			res.Crowdsourced[p.ID] = false
			res.NumCrowdsourced--
			if t.bands.Classify(p.Likelihood) == Matching {
				res.TriageAccepted++
			} else {
				res.TriageRejected++
			}
		}
	}
	t.mu.Unlock()
	res.Triaged = tr
}

// triageOracle answers banded pairs from the machine score; the uncertain
// band goes to the inner (journal-wrapped) crowd. Triage wraps outside the
// journal so machine answers are never journaled.
type triageOracle struct {
	inner Oracle
	tri   *triageState
}

// Label implements Oracle.
func (o *triageOracle) Label(p Pair) Label {
	if l, ok := o.tri.answer(p); ok {
		return l
	}
	return o.inner.Label(p)
}

// triageBatchOracle answers the banded part of each round from the machine
// and asks the inner crowd only for the uncertain rest.
type triageBatchOracle struct {
	inner BatchOracle
	tri   *triageState
}

// LabelBatch implements BatchOracle.
func (o *triageBatchOracle) LabelBatch(ps []Pair) []Label {
	out := make([]Label, len(ps))
	var miss []Pair
	var missIdx []int
	for i, p := range ps {
		if l, ok := o.tri.answer(p); ok {
			out[i] = l
		} else {
			miss = append(miss, p)
			missIdx = append(missIdx, i)
		}
	}
	if len(miss) == 0 {
		return out
	}
	ans := o.inner.LabelBatch(miss)
	if len(ans) != len(miss) {
		// Same collapse rule as the journal wrapper: surface the inner
		// oracle's wrong-length answer with its real count, except when that
		// count happens to equal the full batch size — which would pass the
		// driver's length check misaligned — where it collapses to empty.
		if len(ans) == len(ps) {
			return nil
		}
		return ans
	}
	for k, i := range missIdx {
		out[i] = ans[k]
	}
	return out
}

// triagePlatform serves banded published pairs from an internal FIFO
// without them ever reaching the real platform.
type triagePlatform struct {
	inner Platform
	tri   *triageState
	// ready holds machine answers for published pairs; head indexes the
	// next one to serve.
	ready       []Pair
	readyLabels []Label
	head        int
}

// Publish implements Platform. The FIFO is compacted in place before
// appending, like the journal platform's replay FIFO.
func (tp *triagePlatform) Publish(ps []Pair) {
	if tp.head > 0 {
		n := copy(tp.ready, tp.ready[tp.head:])
		tp.ready = tp.ready[:n]
		copy(tp.readyLabels, tp.readyLabels[tp.head:])
		tp.readyLabels = tp.readyLabels[:n]
		tp.head = 0
	}
	var fwd []Pair
	for _, p := range ps {
		if l, ok := tp.tri.answer(p); ok {
			tp.ready = append(tp.ready, p)
			tp.readyLabels = append(tp.readyLabels, l)
		} else {
			fwd = append(fwd, p)
		}
	}
	if len(fwd) > 0 {
		tp.inner.Publish(fwd)
	}
}

// NextLabel implements Platform: machine answers drain first, in publish
// order, then the real platform is consulted.
func (tp *triagePlatform) NextLabel() (Pair, Label, bool) {
	if tp.head < len(tp.ready) {
		p, l := tp.ready[tp.head], tp.readyLabels[tp.head]
		tp.head++
		if tp.head == len(tp.ready) {
			tp.ready = tp.ready[:0]
			tp.readyLabels = tp.readyLabels[:0]
			tp.head = 0
		}
		return p, l, true
	}
	return tp.inner.NextLabel()
}

// Available implements Platform.
func (tp *triagePlatform) Available() int {
	return len(tp.ready) - tp.head + tp.inner.Available()
}

// triageOrder reorders a labeling order for an enabled triage: machine-
// accepted pairs first, then machine-rejected, then the uncertain band,
// each sub-band keeping the configured ordering's relative order. The free
// machine evidence enters the deduction engine before any crowd question is
// asked, so the uncertain band starts from the densest possible cluster
// graph. Allocates a fresh slice — orderings may return their input.
func triageOrder(order []Pair, bands core.TriageBands) []Pair {
	out := make([]Pair, 0, len(order))
	for _, p := range order {
		if bands.Classify(p.Likelihood) == Matching {
			out = append(out, p)
		}
	}
	for _, p := range order {
		if bands.Classify(p.Likelihood) == NonMatching {
			out = append(out, p)
		}
	}
	for _, p := range order {
		if bands.Classify(p.Likelihood) == Unlabeled {
			out = append(out, p)
		}
	}
	return out
}
