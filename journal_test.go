package crowdjoin_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"testing"

	"crowdjoin"
	"crowdjoin/internal/core"
)

// countingOracle counts how many answers the underlying crowd produced.
type countingOracle struct {
	inner crowdjoin.Oracle
	asked int
}

func (c *countingOracle) Label(p crowdjoin.Pair) crowdjoin.Label {
	c.asked++
	return c.inner.Label(p)
}

// failingOracle fails the test on first use — for sessions that must be
// fully served by the journal.
func failingOracle(t *testing.T) crowdjoin.Oracle {
	return crowdjoin.OracleFunc(func(p crowdjoin.Pair) crowdjoin.Label {
		t.Errorf("crowd consulted for already-journaled pair %v", p)
		return crowdjoin.NonMatching
	})
}

// TestJournalRoundTrip: a completed run's journal, replayed into a fresh
// session, must reproduce identical labels and clusters while consulting
// the crowd zero times.
func TestJournalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	numObjects, pairs, entity := randomJoinCase(rng)
	truth := &crowdjoin.TruthOracle{Entity: entity}

	run := func(o crowdjoin.Oracle, jrn io.ReadWriter, s crowdjoin.Strategy) *crowdjoin.JoinResult {
		t.Helper()
		opts := []crowdjoin.JoinOption{
			crowdjoin.WithPairs(numObjects, pairs),
			crowdjoin.WithStrategy(s),
			crowdjoin.WithOracle(o),
		}
		if jrn != nil {
			opts = append(opts, crowdjoin.WithJournal(jrn))
		}
		j, err := crowdjoin.NewJoin(opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	for _, s := range []crowdjoin.Strategy{crowdjoin.SequentialStrategy, crowdjoin.ParallelStrategy} {
		var buf bytes.Buffer
		first := run(truth, &buf, s)
		replayBuf := bytes.NewBufferString(buf.String())
		second := run(failingOracle(t), replayBuf, s)
		if !reflect.DeepEqual(first.Labels, second.Labels) {
			t.Fatalf("%v: replayed labels differ", s)
		}
		if second.Replayed != first.NumCrowdsourced {
			t.Fatalf("%v: replayed %d answers, journal holds %d", s, second.Replayed, first.NumCrowdsourced)
		}
		c1, err1 := first.Clusters()
		c2, err2 := second.Clusters()
		if err1 != nil || err2 != nil || !reflect.DeepEqual(c1, c2) {
			t.Fatalf("%v: replayed clusters differ: %v vs %v (%v, %v)", s, c1, c2, err1, err2)
		}
	}
}

// TestJournalResumeMidJoin: cancel a journaled join partway, resume it with
// the same journal, and the finished session must match the uninterrupted
// run exactly — re-crowdsourcing zero already-journaled pairs.
func TestJournalResumeMidJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	numObjects, pairs, entity := randomJoinCase(rng)
	truth := &crowdjoin.TruthOracle{Entity: entity}

	for _, s := range []crowdjoin.Strategy{crowdjoin.SequentialStrategy, crowdjoin.ParallelStrategy} {
		// Uninterrupted reference.
		jRef, err := crowdjoin.NewJoin(
			crowdjoin.WithPairs(numObjects, pairs),
			crowdjoin.WithStrategy(s),
			crowdjoin.WithOracle(truth),
		)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := jRef.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if ref.NumCrowdsourced < 4 {
			t.Fatalf("%v: case too small (%d crowdsourced)", s, ref.NumCrowdsourced)
		}
		interruptAt := ref.NumCrowdsourced / 2

		// First half: cancel after interruptAt crowd answers.
		var journal bytes.Buffer
		ctx, cancel := context.WithCancel(context.Background())
		j1, err := crowdjoin.NewJoin(
			crowdjoin.WithPairs(numObjects, pairs),
			crowdjoin.WithStrategy(s),
			crowdjoin.WithOracle(cancelAfter(truth, interruptAt, cancel)),
			crowdjoin.WithJournal(&journal),
		)
		if err != nil {
			t.Fatal(err)
		}
		part, err := j1.Run(ctx)
		cancel()
		if !errors.Is(err, context.Canceled) || part == nil || !part.Partial {
			t.Fatalf("%v: interrupt run = (%v, %v)", s, part, err)
		}
		journaled := part.NumCrowdsourced

		// Second half: same journal, counting crowd.
		counter := &countingOracle{inner: truth}
		j2, err := crowdjoin.NewJoin(
			crowdjoin.WithPairs(numObjects, pairs),
			crowdjoin.WithStrategy(s),
			crowdjoin.WithOracle(counter),
			crowdjoin.WithJournal(&journal),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := j2.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Replayed != journaled {
			t.Errorf("%v: resumed session replayed %d answers, journal holds %d", s, res.Replayed, journaled)
		}
		if counter.asked != ref.NumCrowdsourced-journaled {
			t.Errorf("%v: crowd asked %d fresh questions, want %d", s, counter.asked, ref.NumCrowdsourced-journaled)
		}
		if !reflect.DeepEqual(res.Labels, ref.Labels) {
			t.Errorf("%v: resumed labels differ from uninterrupted run", s)
		}
		cRes, _ := res.Clusters()
		cRef, _ := ref.Clusters()
		if !reflect.DeepEqual(cRes, cRef) {
			t.Errorf("%v: resumed clusters %v, want %v", s, cRes, cRef)
		}
	}
}

// TestJournalResumePlatform: journal replay short-circuits the platform —
// answers already journaled never reach the real backend.
func TestJournalResumePlatform(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	numObjects, pairs, entity := randomJoinCase(rng)
	truth := &crowdjoin.TruthOracle{Entity: entity}

	run := func(jrn io.ReadWriter, oracle crowdjoin.Oracle, ctx context.Context) (*crowdjoin.JoinResult, *core.SimPlatform, error) {
		pf := core.NewSimPlatform(oracle, core.SelectAscendingLikelihood, nil)
		j, err := crowdjoin.NewJoin(
			crowdjoin.WithPairs(numObjects, pairs),
			crowdjoin.WithStrategy(crowdjoin.PlatformStrategy),
			crowdjoin.WithPlatform(pf),
			crowdjoin.WithInstantDecisions(true),
			crowdjoin.WithJournal(jrn),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Run(ctx)
		return res, pf, err
	}

	// Reference run (no journal) for the final clusters.
	jRef, err := crowdjoin.NewJoin(
		crowdjoin.WithPairs(numObjects, pairs),
		crowdjoin.WithStrategy(crowdjoin.PlatformStrategy),
		crowdjoin.WithPlatform(core.NewSimPlatform(truth, core.SelectAscendingLikelihood, nil)),
		crowdjoin.WithInstantDecisions(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := jRef.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var journal bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	interruptAt := ref.NumCrowdsourced / 2
	part, _, err := run(&journal, cancelAfter(truth, interruptAt, cancel), ctx)
	cancel()
	if !errors.Is(err, context.Canceled) || !part.Partial {
		t.Fatalf("interrupt run = (%+v, %v)", part, err)
	}

	res, pf, err := run(&journal, truth, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed != part.NumCrowdsourced {
		t.Errorf("replayed %d, journal holds %d", res.Replayed, part.NumCrowdsourced)
	}
	if pf.Labeled() != res.NumCrowdsourced-res.Replayed {
		t.Errorf("platform labeled %d pairs, want %d fresh ones", pf.Labeled(), res.NumCrowdsourced-res.Replayed)
	}
	cRes, _ := res.Clusters()
	cRef, _ := ref.Clusters()
	if !reflect.DeepEqual(cRes, cRef) {
		t.Errorf("resumed platform clusters %v, want %v", cRes, cRef)
	}
}

// TestJournalTornTail: a torn final line (crash mid-append) is dropped on
// the next open, voided by the next append, and stays voided across
// further resume cycles on a real file — even when the fragment is a
// numerically torn entry that would parse as a valid (fabricated) answer.
func TestJournalTornTail(t *testing.T) {
	numObjects := 13
	pairs := []crowdjoin.Pair{
		{ID: 0, A: 0, B: 12, Likelihood: 0.9},
		{ID: 1, A: 0, B: 1, Likelihood: 0.8},
		{ID: 2, A: 3, B: 4, Likelihood: 0.7},
	}
	// Truth: (0,12) and (3,4) match, (0,1) does not — so the fabricated
	// "m 0 1" of the torn tail, if ever replayed, is observable.
	truth := crowdjoin.OracleFunc(func(p crowdjoin.Pair) crowdjoin.Label {
		if (p.A == 0 && p.B == 12) || (p.A == 3 && p.B == 4) {
			return crowdjoin.Matching
		}
		return crowdjoin.NonMatching
	})
	path := t.TempDir() + "/j.log"
	// Crash mid-append tore "m 0 12\n" down to "m 0 1" — a fragment that
	// parses as a valid in-range entry with the wrong answer.
	if err := os.WriteFile(path, []byte("crowdjoin-journal v1\nm 3 4\nm 0 1"), 0o644); err != nil {
		t.Fatal(err)
	}

	resume := func(o crowdjoin.Oracle) *crowdjoin.JoinResult {
		t.Helper()
		f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		j, err := crowdjoin.NewJoin(
			crowdjoin.WithPairs(numObjects, pairs),
			crowdjoin.WithOracle(o),
			crowdjoin.WithJournal(f),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	counter := &countingOracle{inner: truth}
	first := resume(counter)
	if first.Replayed != 1 {
		t.Errorf("first resume replayed %d answers, want 1 (torn fragment dropped)", first.Replayed)
	}
	if counter.asked != 2 {
		t.Errorf("first resume asked the crowd %d questions, want 2", counter.asked)
	}

	// Second resume must replay everything — and must NOT see the voided
	// fragment as the fabricated answer m(0,1).
	second := resume(failingOracle(t))
	if second.Replayed != 3 {
		t.Errorf("second resume replayed %d answers, want 3", second.Replayed)
	}
	if second.Labels[1] != crowdjoin.NonMatching {
		t.Errorf("pair (0,1) labeled %v after crash-resume cycles, want non-matching (torn fragment replayed as real?)", second.Labels[1])
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "m 0 1#\n") {
		t.Errorf("torn fragment not voided in place:\n%s", raw)
	}
}

// TestJournalRerunSameJoin: a second Run on the same Join must rewind a
// seekable journal and replay it (not re-crowdsource and re-write the
// header), and must refuse a non-seekable stream it already drained.
func TestJournalRerunSameJoin(t *testing.T) {
	dir := t.TempDir()
	f, err := os.OpenFile(dir+"/j.log", os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	counter := &countingOracle{inner: exampleOracle()}
	j, err := crowdjoin.NewJoin(
		crowdjoin.WithTexts(exampleTexts),
		crowdjoin.WithOracle(counter),
		crowdjoin.WithJournal(f),
	)
	if err != nil {
		t.Fatal(err)
	}
	first, err := j.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	second, err := j.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if counter.asked != first.NumCrowdsourced {
		t.Errorf("re-Run consulted the crowd %d extra times", counter.asked-first.NumCrowdsourced)
	}
	if second.Replayed != first.NumCrowdsourced {
		t.Errorf("re-Run replayed %d answers, want %d", second.Replayed, first.NumCrowdsourced)
	}
	raw, err := os.ReadFile(dir + "/j.log")
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(raw), "crowdjoin-journal v2"); n != 1 {
		t.Errorf("journal holds %d headers after re-Run:\n%s", n, raw)
	}

	// Non-seekable stream: the drained buffer must be refused, not
	// silently treated as a fresh journal.
	var buf bytes.Buffer
	j2, err := crowdjoin.NewJoin(
		crowdjoin.WithTexts(exampleTexts),
		crowdjoin.WithOracle(exampleOracle()),
		crowdjoin.WithJournal(&buf),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "already consumed") {
		t.Errorf("re-Run on a drained buffer: err = %v, want refusal", err)
	}
}

// TestJournalReversedEntryReplays: a hand-edited entry written b a (high id
// first) must still replay — lookup keys are canonical.
func TestJournalReversedEntryReplays(t *testing.T) {
	buf := bytes.NewBufferString("crowdjoin-journal v1\nm 1 0\n")
	counter := &countingOracle{inner: exampleOracle()}
	j, err := crowdjoin.NewJoin(
		crowdjoin.WithTexts(exampleTexts),
		crowdjoin.WithOracle(counter),
		crowdjoin.WithJournal(buf),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed != 1 {
		t.Errorf("replayed %d answers, want the reversed (0,1) entry to count", res.Replayed)
	}
}

// TestJournalObjectsLineSelfHeals: when the objects fingerprint was torn
// away by a crashed first append, the next append rewrites it, so a later
// cross-dataset resume is still rejected.
func TestJournalObjectsLineSelfHeals(t *testing.T) {
	path := t.TempDir() + "/j.log"
	// Crash tore the first append mid-'objects' line.
	if err := os.WriteFile(path, []byte("crowdjoin-journal v1\nobjec"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	j, err := crowdjoin.NewJoin(
		crowdjoin.WithTexts(exampleTexts),
		crowdjoin.WithOracle(exampleOracle()),
		crowdjoin.WithJournal(f),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "\nobjects 6\n") {
		t.Fatalf("objects fingerprint not rewritten after torn append:\n%s", raw)
	}

	// The healed fingerprint must reject a resume against a smaller
	// universe even though the entries' ids happen to be in range there.
	f2, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	j2, err := crowdjoin.NewJoin(
		crowdjoin.WithPairs(4, []crowdjoin.Pair{{ID: 0, A: 0, B: 1, Likelihood: 0.9}}),
		crowdjoin.WithOracle(exampleOracle()),
		crowdjoin.WithJournal(f2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "objects") {
		t.Errorf("cross-dataset resume: err = %v, want objects-fingerprint rejection", err)
	}
}

// TestJournalRejectsGarbage: wrong header, malformed entries, and entries
// outside the object universe are configuration errors, not silent
// misreplays.
func TestJournalRejectsGarbage(t *testing.T) {
	cases := []struct {
		name    string
		content string
	}{
		{"wrong header", "some other file\nm 0 1\n"},
		{"malformed entry", "crowdjoin-journal v1\nx 0 1\n"},
		{"non-numeric", "crowdjoin-journal v1\nm zero one\n"},
		{"out of range", "crowdjoin-journal v1\nm 0 99\n"},
		{"self pair", "crowdjoin-journal v1\nm 3 3\n"},
		{"wrong universe size", "crowdjoin-journal v1\nobjects 4\nm 0 1\n"},
		{"conflicting duplicate", "crowdjoin-journal v1\nm 0 1\nn 0 1\n"},
		{"conflicting reversed duplicate", "crowdjoin-journal v1\nm 0 1\nn 1 0\n"},
	}
	for _, tc := range cases {
		j, err := crowdjoin.NewJoin(
			crowdjoin.WithTexts(exampleTexts),
			crowdjoin.WithOracle(exampleOracle()),
			crowdjoin.WithJournal(bytes.NewBufferString(tc.content)),
		)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Run(context.Background()); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestJournalExactDuplicateBenign: a repeated identical entry (say from a
// hand-merged pair of journals) replays normally — only *conflicting*
// duplicates are corruption.
func TestJournalExactDuplicateBenign(t *testing.T) {
	buf := bytes.NewBufferString("crowdjoin-journal v1\nn 0 1\nn 0 1\nn 1 0\n")
	j, err := crowdjoin.NewJoin(
		crowdjoin.WithTexts(exampleTexts),
		crowdjoin.WithOracle(exampleOracle()),
		crowdjoin.WithJournal(buf),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Run(context.Background())
	if err != nil {
		t.Fatalf("exact duplicate entries rejected: %v", err)
	}
	if res.Replayed != 1 {
		t.Errorf("replayed %d answers, want the duplicated (0,1) entry to count once", res.Replayed)
	}
}

// TestJournalConcurrentShards: a WithConcurrency(4) session appends to one
// journal from four shard goroutines. With the narrowed record critical
// section (format under the state lock, writes via the flusher), the
// journal must still come out parseable and complete: a fresh session
// replays every answer without consulting the crowd.
func TestJournalConcurrentShards(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 4; trial++ {
		numObjects, pairs, entity := randomJoinCase(rng)
		truth := &crowdjoin.TruthOracle{Entity: entity}
		var journal bytes.Buffer
		j1, err := crowdjoin.NewJoin(
			crowdjoin.WithPairs(numObjects, pairs),
			crowdjoin.WithStrategy(crowdjoin.ParallelStrategy),
			crowdjoin.WithOracle(truth),
			crowdjoin.WithConcurrency(4),
			crowdjoin.WithJournal(&journal),
		)
		if err != nil {
			t.Fatal(err)
		}
		first, err := j1.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		content := journal.String()
		if !strings.HasPrefix(content, "crowdjoin-journal v2\n") {
			t.Fatalf("trial %d: journal does not start with the header:\n%.120s", trial, content)
		}
		if !strings.HasSuffix(content, "\n") {
			t.Fatalf("trial %d: concurrently written journal ends mid-line:\n%.120s", trial, content)
		}
		j2, err := crowdjoin.NewJoin(
			crowdjoin.WithPairs(numObjects, pairs),
			crowdjoin.WithStrategy(crowdjoin.ParallelStrategy),
			crowdjoin.WithOracle(failingOracle(t)),
			crowdjoin.WithConcurrency(4),
			crowdjoin.WithJournal(bytes.NewBufferString(content)),
		)
		if err != nil {
			t.Fatal(err)
		}
		second, err := j2.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if second.Replayed != first.NumCrowdsourced {
			t.Errorf("trial %d: replayed %d answers, journal holds %d", trial, second.Replayed, first.NumCrowdsourced)
		}
		if !reflect.DeepEqual(first.Labels, second.Labels) {
			t.Errorf("trial %d: replayed labels differ", trial)
		}
	}
}

// brokenWriter reads fine but fails every write.
type brokenWriter struct{ r io.Reader }

func (b *brokenWriter) Read(p []byte) (int, error)  { return b.r.Read(p) }
func (b *brokenWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

// TestJournalWriteFailureCancelsRun: when the journal stops accepting
// appends, the session cancels itself rather than buying unrecorded
// answers, and Run reports the write error alongside the partial result.
func TestJournalWriteFailureCancelsRun(t *testing.T) {
	j, err := crowdjoin.NewJoin(
		crowdjoin.WithTexts(exampleTexts),
		crowdjoin.WithOracle(exampleOracle()),
		crowdjoin.WithJournal(&brokenWriter{r: strings.NewReader("")}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v, want journal write error", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("res = %+v, want partial result", res)
	}
	// The first answer was bought before the failure was detected; at most
	// one unrecorded answer is tolerable.
	if res.NumCrowdsourced > 1 {
		t.Errorf("session crowdsourced %d pairs after the journal broke", res.NumCrowdsourced)
	}
}
