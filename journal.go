package crowdjoin

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// The label journal is the session checkpoint layer: an append-only,
// line-oriented record of every crowd answer, written as the answers
// arrive. A new session pointed at the same journal replays the recorded
// answers through the deduction engine instead of re-crowdsourcing them,
// which resumes an interrupted join without paying twice.
//
// Format (text, one record per line):
//
//	crowdjoin-journal v1
//	objects <numObjects>
//	m <a> <b>
//	n <a> <b>
//
// where m/n is the matching/non-matching answer and a, b are object ids
// (written a < b; read in either order). The objects line fingerprints the
// universe size: resuming against a differently sized dataset is rejected.
// The journal stores ids, not record contents, so resuming against a
// same-sized but edited or reordered dataset is undetectable and on the
// caller — keep one journal per input. The format survives crashes
// mid-append: a trailing line without a newline is ignored on read, and
// the next append voids it first by writing "#\n" — the fragment becomes a
// line ending in '#', which every future read skips. A bare re-termination
// would instead complete the fragment into a parseable line: at best a
// permanent parse error, at worst (a numerically torn entry like "m 12 3"
// from "m 12 34") a fabricated answer replayed as real.

// journalHeader is the first line of every label journal.
const journalHeader = "crowdjoin-journal v1"

// pairKey is the canonical (low, high) object-id key of a pair.
type pairKey struct{ a, b int32 }

func keyOf(a, b int32) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// journalState is one session's view of a label journal: the replay map
// read at open, plus the append side. All methods are safe for concurrent
// use: a component-sharded session (WithConcurrency > 1) consults and
// appends to the one journal from several shard goroutines. Shards own
// disjoint pairs, so the serialization order of their appends never
// matters for replay.
type journalState struct {
	mu         sync.Mutex
	answers    map[pairKey]Label
	w          io.Writer
	numObjects int
	// needHeader: the stream held no (surviving) lines, so the first
	// append writes the header line. needObjects: no objects fingerprint
	// survived (fresh journal, or the line was torn away), so the first
	// append (re)writes it — the size check self-heals instead of being
	// silently disabled forever. needVoid: the stream ended mid-line
	// (crash during a previous append), so the first append starts with
	// "#\n", turning the fragment into a voided line future reads skip.
	needHeader  bool
	needObjects bool
	needVoid    bool
	replayed    int
	werr        error
	onError     func()
}

// openJournal reads every complete entry of rw and prepares the append
// side. A mismatched objects line, or an entry referencing objects outside
// [0, numObjects), is rejected: the journal belongs to a differently sized
// dataset. (Same-sized content changes are invisible here; see the format
// comment.)
func openJournal(rw io.ReadWriter, numObjects int) (*journalState, error) {
	raw, err := io.ReadAll(rw)
	if err != nil {
		return nil, fmt.Errorf("crowdjoin: reading journal: %w", err)
	}
	j := &journalState{answers: make(map[pairKey]Label), w: rw, numObjects: numObjects}
	if len(raw) == 0 {
		j.needHeader = true
		j.needObjects = true
		return j, nil
	}
	content := string(raw)
	// A trailing fragment without '\n' is a torn final append: drop it and
	// have the next append void it (see the format comment above).
	if !strings.HasSuffix(content, "\n") {
		j.needVoid = true
		if i := strings.LastIndexByte(content, '\n'); i >= 0 {
			content = content[:i+1]
		} else {
			content = ""
		}
	}
	sawHeader, sawObjects := false, false
	for _, line := range strings.Split(strings.TrimSuffix(content, "\n"), "\n") {
		if line == "" || strings.HasSuffix(line, "#") {
			// Voided torn fragments (and blank lines) are not entries.
			continue
		}
		if !sawHeader {
			if line != journalHeader {
				return nil, fmt.Errorf("crowdjoin: journal stream does not start with %q", journalHeader)
			}
			sawHeader = true
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == "objects" {
			if fields[1] != strconv.Itoa(numObjects) {
				return nil, fmt.Errorf("crowdjoin: journal was written for %s objects, this join has %d", fields[1], numObjects)
			}
			sawObjects = true
			continue
		}
		if len(fields) != 3 || (fields[0] != "m" && fields[0] != "n") {
			return nil, fmt.Errorf("crowdjoin: malformed journal entry %q", line)
		}
		a, errA := strconv.ParseInt(fields[1], 10, 32)
		b, errB := strconv.ParseInt(fields[2], 10, 32)
		if errA != nil || errB != nil {
			return nil, fmt.Errorf("crowdjoin: malformed journal entry %q", line)
		}
		if a < 0 || a >= int64(numObjects) || b < 0 || b >= int64(numObjects) || a == b {
			return nil, fmt.Errorf("crowdjoin: journal entry %q outside the %d-object universe", line, numObjects)
		}
		l := NonMatching
		if fields[0] == "m" {
			l = Matching
		}
		// Canonicalize: our writer emits a < b, but a hand-edited entry in
		// the other order must still replay (lookup keys are canonical).
		j.answers[keyOf(int32(a), int32(b))] = l
	}
	if !sawHeader {
		// Empty, or only voided fragments survived: a fresh journal.
		j.needHeader = true
	}
	j.needObjects = !sawObjects
	return j, nil
}

// lookup returns the journaled answer for (a, b), if any.
func (j *journalState) lookup(a, b int32) (Label, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	l, ok := j.answers[keyOf(a, b)]
	return l, ok
}

// countReplay records that one journaled answer was served in place of a
// crowd question.
func (j *journalState) countReplay() {
	j.mu.Lock()
	j.replayed++
	j.mu.Unlock()
}

// replayedCount returns the number of answers served from the journal.
func (j *journalState) replayedCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayed
}

// record appends one crowd answer. Invalid labels are not journaled (the
// driver rejects them right after); a write failure is remembered and
// reported once via onError so the session can stop buying unrecorded
// answers.
func (j *journalState) record(p Pair, l Label) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.werr != nil || (l != Matching && l != NonMatching) {
		return
	}
	k := keyOf(p.A, p.B)
	if _, ok := j.answers[k]; ok {
		return
	}
	j.answers[k] = l
	var sb strings.Builder
	if j.needVoid {
		sb.WriteString("#\n")
		j.needVoid = false
	}
	if j.needHeader {
		sb.WriteString(journalHeader)
		sb.WriteByte('\n')
		j.needHeader = false
	}
	if j.needObjects {
		sb.WriteString("objects ")
		sb.WriteString(strconv.Itoa(j.numObjects))
		sb.WriteByte('\n')
		j.needObjects = false
	}
	tag := byte('n')
	if l == Matching {
		tag = 'm'
	}
	sb.WriteByte(tag)
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatInt(int64(k.a), 10))
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatInt(int64(k.b), 10))
	sb.WriteByte('\n')
	if _, err := io.WriteString(j.w, sb.String()); err != nil {
		j.werr = err
		if j.onError != nil {
			j.onError()
		}
	}
}

// journalOracle replays journaled answers and records fresh ones.
type journalOracle struct {
	inner Oracle
	jrn   *journalState
}

// Label implements Oracle.
func (o *journalOracle) Label(p Pair) Label {
	if l, ok := o.jrn.lookup(p.A, p.B); ok {
		o.jrn.countReplay()
		return l
	}
	l := o.inner.Label(p)
	o.jrn.record(p, l)
	return l
}

// journalBatchOracle replays the journaled part of each round and asks the
// crowd only for the rest.
type journalBatchOracle struct {
	inner BatchOracle
	jrn   *journalState
}

// LabelBatch implements BatchOracle.
func (o *journalBatchOracle) LabelBatch(ps []Pair) []Label {
	out := make([]Label, len(ps))
	var miss []Pair
	var missIdx []int
	for i, p := range ps {
		if l, ok := o.jrn.lookup(p.A, p.B); ok {
			out[i] = l
			o.jrn.countReplay()
		} else {
			miss = append(miss, p)
			missIdx = append(missIdx, i)
		}
	}
	if len(miss) == 0 {
		return out
	}
	ans := o.inner.LabelBatch(miss)
	if len(ans) != len(miss) {
		// Surface the inner oracle's wrong-length answer to the driver's
		// length check with its real count — except when that bogus count
		// equals the full batch size, which would pass the check with
		// misaligned answers; collapse that case to an empty reply.
		if len(ans) == len(ps) {
			return nil
		}
		return ans
	}
	for k, i := range missIdx {
		out[i] = ans[k]
		o.jrn.record(miss[k], ans[k])
	}
	return out
}

// journalPlatform short-circuits published pairs whose answers are already
// journaled — they are served from an internal FIFO without ever reaching
// the real platform — and records every answer the platform produces.
type journalPlatform struct {
	inner Platform
	jrn   *journalState
	// ready holds journaled answers for published pairs; head indexes the
	// next one to serve.
	ready       []Pair
	readyLabels []Label
	head        int
}

// Publish implements Platform.
func (jp *journalPlatform) Publish(ps []Pair) {
	var fwd []Pair
	for _, p := range ps {
		if l, ok := jp.jrn.lookup(p.A, p.B); ok {
			jp.ready = append(jp.ready, p)
			jp.readyLabels = append(jp.readyLabels, l)
		} else {
			fwd = append(fwd, p)
		}
	}
	if len(fwd) > 0 {
		jp.inner.Publish(fwd)
	}
}

// NextLabel implements Platform: journaled answers drain first, in publish
// order, then the real platform is consulted.
func (jp *journalPlatform) NextLabel() (Pair, Label, bool) {
	if jp.head < len(jp.ready) {
		p, l := jp.ready[jp.head], jp.readyLabels[jp.head]
		jp.head++
		jp.jrn.countReplay()
		return p, l, true
	}
	p, l, ok := jp.inner.NextLabel()
	if ok {
		jp.jrn.record(p, l)
	}
	return p, l, ok
}

// Available implements Platform.
func (jp *journalPlatform) Available() int {
	return len(jp.ready) - jp.head + jp.inner.Available()
}
