package crowdjoin

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// The label journal is the session checkpoint layer: an append-only,
// line-oriented record of every crowd answer, written as the answers
// arrive. A new session pointed at the same journal replays the recorded
// answers through the deduction engine instead of re-crowdsourcing them,
// which resumes an interrupted join without paying twice.
//
// Format (text, one record per line):
//
//	crowdjoin-journal v2
//	objects <initialObjects>
//	m <a> <b>
//	n <a> <b>
//	r <k>
//
// where m/n is the matching/non-matching answer and a, b are object ids
// (written a < b; read in either order). The objects line fingerprints the
// initial universe size: resuming against a differently sized dataset is
// rejected. An "r <k>" line (new in v2) records the arrival of k appended
// records in a streaming session: it grows the running universe by k, so
// answers later in the stream may reference the new ids while answers
// before it cannot — the position of each arrival in the stream is part of
// the fingerprint. On open, the session declares its own arrival history
// and the journal's r entries are matched against it positionally; a
// session that appended different batches (or none) is rejected rather
// than replayed against the wrong records. v1 journals (no r entries,
// "crowdjoin-journal v1" header) read unchanged; fresh journals are
// written as v2.
//
// The journal stores ids, not record contents, so resuming against a
// same-sized but edited or reordered dataset is undetectable and on the
// caller — keep one journal per input. The format survives crashes
// mid-append: a trailing line without a newline is ignored on read, and
// the next append voids it first by writing "#\n" — the fragment becomes a
// line ending in '#', which every future read skips. A bare re-termination
// would instead complete the fragment into a parseable line: at best a
// permanent parse error, at worst (a numerically torn entry like "m 12 3"
// from "m 12 34") a fabricated answer replayed as real.

// journalHeader is the first line of every freshly written label journal;
// journalHeaderV1 is the previous format's, still accepted on read.
const (
	journalHeader   = "crowdjoin-journal v2"
	journalHeaderV1 = "crowdjoin-journal v1"
)

// OpenJournalFile opens (creating if necessary) a label journal at path,
// ready for WithJournal: O_CREATE|O_RDWR|O_APPEND, so appends always land
// at the end and a re-opened journal replays from the start. When the call
// creates the file, the parent directory is fsynced before returning —
// without that, a crash right after journal creation can lose the
// directory entry itself, and with it every answer the session goes on to
// record; a job submitted to a join server must survive a crash
// immediately after submission. Appends are flushed by the OS as usual
// (the journal layer confirms each answer only once written; it does not
// fsync per answer).
func OpenJournalFile(path string) (*os.File, error) {
	// O_EXCL first so "did we create it?" is race-free; an existing file is
	// then opened without O_CREATE.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR|os.O_APPEND, 0o644)
	switch {
	case err == nil:
		if serr := syncDir(filepath.Dir(path)); serr != nil {
			f.Close()
			return nil, fmt.Errorf("crowdjoin: syncing journal directory: %w", serr)
		}
		return f, nil
	case os.IsExist(err):
		return os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	default:
		return nil, err
	}
}

// syncDir fsyncs a directory so a newly created entry in it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// pairKey is the canonical (low, high) object-id key of a pair.
type pairKey struct{ a, b int32 }

func keyOf(a, b int32) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// journalState is one session's view of a label journal: the replay map
// read at open, plus the append side. All methods are safe for concurrent
// use: a component-sharded session (WithConcurrency > 1) consults and
// appends to the one journal from several shard goroutines. Shards own
// disjoint pairs, so the serialization order of their appends never
// matters for replay.
type journalState struct {
	mu      sync.Mutex
	answers map[pairKey]Label // guarded by mu
	// w is the append side; nil puts the journal in memory-only mode —
	// answers are cached and replayed across Runs of one session but
	// nothing is persisted (streaming sessions without WithJournal use
	// this so a mid-stream Run's answers are never re-bought).
	w io.Writer
	// numObjects is the initial universe size (the objects line); appended
	// arrivals grow the universe beyond it.
	numObjects int
	// pendingArrivals holds session arrivals not yet present in the
	// stream; the next append writes them (in order, before its entry) so
	// answers about appended records always follow the r line that
	// introduced them.
	pendingArrivals []int // guarded by mu
	// needHeader: the stream held no (surviving) lines, so the first
	// append writes the header line. needObjects: no objects fingerprint
	// survived (fresh journal, or the line was torn away), so the first
	// append (re)writes it — the size check self-heals instead of being
	// silently disabled forever. needVoid: the stream ended mid-line
	// (crash during a previous append), so the first append starts with
	// "#\n", turning the fragment into a voided line future reads skip.
	needHeader  bool  // guarded by mu
	needObjects bool  // guarded by mu
	needVoid    bool  // guarded by mu
	replayed    int   // guarded by mu
	werr        error // guarded by mu
	onError     func()
	// pending holds formatted entries not yet written to w; flushing marks
	// that one goroutine is draining it. record formats under mu (so the
	// void/header/objects preamble and entry order are serialized) but
	// writes outside it — group commit: the first recorder becomes the
	// flusher and drains pending to w one batch at a time, while
	// concurrent recorders append their formatted entry and wait on
	// flushed until their bytes are on disk (queued/written track the
	// append and write high-water marks). k shard goroutines' entries
	// ride one batched write instead of k serialized ones, lookups never
	// wait behind a write, and record still only returns once its answer
	// is recorded (or the write failed — no answers are bought
	// unrecorded). Exactly one flusher runs at a time, so the io.Writer
	// itself needs no concurrency safety (writes happen-before each other
	// via mu).
	pending  []byte    // guarded by mu
	spare    []byte    // guarded by mu; retired pending buffer, reused to avoid reallocating
	flushing bool      // guarded by mu
	flushed  sync.Cond // signals written/werr updates; lazily bound to mu
	queued   int64     // guarded by mu; total bytes ever appended to pending
	written  int64     // guarded by mu; total bytes successfully written to w
}

// newMemoryJournal returns a journal in memory-only mode: lookup, record,
// and the replay counter work, but nothing is read or persisted.
func newMemoryJournal(initialObjects int) *journalState {
	j := &journalState{answers: make(map[pairKey]Label), numObjects: initialObjects}
	j.flushed.L = &j.mu
	return j
}

// openJournal reads every complete entry of rw and prepares the append
// side. initialObjects is the universe size before any append; arrivals is
// the session's record-arrival history (the size of each appended batch,
// in order; nil for non-streaming sessions). A mismatched objects line, an
// r entry that does not match the session's arrival at the same position
// (or exists at all in a non-streaming session), or an answer referencing
// objects beyond the universe as of its position in the stream, is
// rejected: the journal belongs to a different input. (Same-sized content
// changes are invisible here; see the format comment.)
func openJournal(rw io.ReadWriter, initialObjects int, arrivals []int) (*journalState, error) {
	raw, err := io.ReadAll(rw)
	if err != nil {
		return nil, fmt.Errorf("crowdjoin: reading journal: %w", err)
	}
	j := &journalState{answers: make(map[pairKey]Label), w: rw, numObjects: initialObjects}
	j.flushed.L = &j.mu
	content := string(raw)
	// A trailing fragment without '\n' is a torn final append: drop it and
	// have the next append void it (see the format comment above).
	if len(content) > 0 && !strings.HasSuffix(content, "\n") {
		j.needVoid = true
		if i := strings.LastIndexByte(content, '\n'); i >= 0 {
			content = content[:i+1]
		} else {
			content = ""
		}
	}
	sawHeader, sawObjects := false, false
	universe := int64(initialObjects) // grows as r entries are consumed
	consumed := 0                     // arrivals matched against r entries
	for _, line := range strings.Split(strings.TrimSuffix(content, "\n"), "\n") {
		if line == "" || strings.HasSuffix(line, "#") {
			// Voided torn fragments (and blank lines) are not entries.
			continue
		}
		if !sawHeader {
			if line != journalHeader && line != journalHeaderV1 {
				return nil, fmt.Errorf("crowdjoin: journal stream does not start with %q", journalHeader)
			}
			sawHeader = true
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == "objects" {
			if fields[1] != strconv.Itoa(initialObjects) {
				return nil, fmt.Errorf("crowdjoin: journal was written for %s objects, this join has %d", fields[1], initialObjects)
			}
			sawObjects = true
			continue
		}
		if len(fields) == 2 && fields[0] == "r" {
			k, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil || k < 1 {
				return nil, fmt.Errorf("crowdjoin: malformed journal entry %q", line)
			}
			if consumed >= len(arrivals) {
				return nil, fmt.Errorf("crowdjoin: journal records an arrival of %d records this session has not appended", k)
			}
			if int(k) != arrivals[consumed] {
				return nil, fmt.Errorf("crowdjoin: journal arrival %d has %d records, this session appended %d", consumed, k, arrivals[consumed])
			}
			universe += k
			consumed++
			continue
		}
		if len(fields) != 3 || (fields[0] != "m" && fields[0] != "n") {
			return nil, fmt.Errorf("crowdjoin: malformed journal entry %q", line)
		}
		a, errA := strconv.ParseInt(fields[1], 10, 32)
		b, errB := strconv.ParseInt(fields[2], 10, 32)
		if errA != nil || errB != nil {
			return nil, fmt.Errorf("crowdjoin: malformed journal entry %q", line)
		}
		if a < 0 || a >= universe || b < 0 || b >= universe || a == b {
			return nil, fmt.Errorf("crowdjoin: journal entry %q outside the %d-object universe", line, universe)
		}
		l := NonMatching
		if fields[0] == "m" {
			l = Matching
		}
		// Canonicalize: our writer emits a < b, but a hand-edited entry in
		// the other order must still replay (lookup keys are canonical).
		k := keyOf(int32(a), int32(b))
		if prev, ok := j.answers[k]; ok && prev != l {
			// A later entry contradicting an earlier one is corruption, not
			// a correction: replaying the fabricated later answer would
			// silently flip a label. Exact duplicates stay benign.
			return nil, fmt.Errorf("crowdjoin: conflicting journal entries for pair (%d, %d)", k.a, k.b)
		}
		j.answers[k] = l
	}
	if !sawHeader {
		// Empty, or only voided fragments survived: a fresh journal.
		j.needHeader = true
	}
	j.needObjects = !sawObjects
	j.pendingArrivals = append([]int(nil), arrivals[consumed:]...)
	return j, nil
}

// lookup returns the journaled answer for (a, b), if any.
func (j *journalState) lookup(a, b int32) (Label, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	l, ok := j.answers[keyOf(a, b)]
	return l, ok
}

// countReplay records that one journaled answer was served in place of a
// crowd question.
func (j *journalState) countReplay() {
	j.mu.Lock()
	j.replayed++
	j.mu.Unlock()
}

// replayedCount returns the number of answers served from the journal.
func (j *journalState) replayedCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayed
}

// resetReplay zeroes the replay counter; a memory-mode journal reused
// across Runs calls this so each Run reports its own replay count.
func (j *journalState) resetReplay() {
	j.mu.Lock()
	j.replayed = 0
	j.mu.Unlock()
}

// writeErr returns the first append failure, if any. Run reads it after
// the drivers drain; the lock still matters because a failed flusher may
// be setting werr while a last straggler returns.
func (j *journalState) writeErr() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.werr
}

// record appends one crowd answer. Invalid labels are not journaled (the
// driver rejects them right after); a write failure is remembered and
// reported once via onError so the session can stop buying unrecorded
// answers.
//
// The critical section is narrow: the entry (with any needVoid/header/
// objects preamble) is formatted into the pending buffer under mu, and
// the disk write happens outside it, group-commit style — see the
// pending/flushing/flushed fields. Entries always reach w as whole lines
// in format order, so append atomicity and the preamble-before-entries
// ordering are preserved, and record returns only once its entry is
// written (or the write failed).
func (j *journalState) record(p Pair, l Label) {
	j.mu.Lock()
	if j.werr != nil || (l != Matching && l != NonMatching) {
		j.mu.Unlock()
		return
	}
	k := keyOf(p.A, p.B)
	if _, ok := j.answers[k]; ok {
		j.mu.Unlock()
		return
	}
	j.answers[k] = l
	if j.w == nil {
		// Memory-only mode: the answer is cached for replay, nothing is
		// formatted or written.
		j.mu.Unlock()
		return
	}
	before := len(j.pending)
	if j.needVoid {
		j.pending = append(j.pending, "#\n"...)
		j.needVoid = false
	}
	if j.needHeader {
		j.pending = append(j.pending, journalHeader...)
		j.pending = append(j.pending, '\n')
		j.needHeader = false
	}
	if j.needObjects {
		j.pending = append(j.pending, "objects "...)
		j.pending = strconv.AppendInt(j.pending, int64(j.numObjects), 10)
		j.pending = append(j.pending, '\n')
		j.needObjects = false
	}
	for _, arr := range j.pendingArrivals {
		// Arrivals the stream has not seen yet go out before the entry, so
		// an answer about appended records always follows the r line that
		// introduced them.
		j.pending = append(j.pending, "r "...)
		j.pending = strconv.AppendInt(j.pending, int64(arr), 10)
		j.pending = append(j.pending, '\n')
	}
	j.pendingArrivals = j.pendingArrivals[:0]
	tag := byte('n')
	if l == Matching {
		tag = 'm'
	}
	j.pending = append(j.pending, tag, ' ')
	j.pending = strconv.AppendInt(j.pending, int64(k.a), 10)
	j.pending = append(j.pending, ' ')
	j.pending = strconv.AppendInt(j.pending, int64(k.b), 10)
	j.pending = append(j.pending, '\n')
	j.queued += int64(len(j.pending) - before)
	myEnd := j.queued
	if j.flushing {
		// The active flusher batches this entry into its next write; wait
		// until it is on disk (or the journal broke) before acknowledging
		// the answer.
		for j.written < myEnd && j.werr == nil {
			j.flushed.Wait()
		}
		j.mu.Unlock()
		return
	}
	j.flushing = true
	var werr error
	for len(j.pending) > 0 && werr == nil {
		buf := j.pending
		j.pending = j.spare[:0]
		j.mu.Unlock()
		_, werr = j.w.Write(buf)
		j.mu.Lock()
		j.spare = buf
		if werr == nil {
			j.written += int64(len(buf))
			j.flushed.Broadcast()
		}
	}
	j.flushing = false
	onError := j.onError
	if werr != nil && j.werr == nil {
		j.werr = werr
		j.flushed.Broadcast() // wake waiters from the failed batch
	} else {
		onError = nil
	}
	j.mu.Unlock()
	if onError != nil {
		onError()
	}
}

// journalOracle replays journaled answers and records fresh ones.
type journalOracle struct {
	inner Oracle
	jrn   *journalState
}

// Label implements Oracle.
func (o *journalOracle) Label(p Pair) Label {
	if l, ok := o.jrn.lookup(p.A, p.B); ok {
		o.jrn.countReplay()
		return l
	}
	l := o.inner.Label(p)
	o.jrn.record(p, l)
	return l
}

// journalBatchOracle replays the journaled part of each round and asks the
// crowd only for the rest.
type journalBatchOracle struct {
	inner BatchOracle
	jrn   *journalState
}

// LabelBatch implements BatchOracle.
func (o *journalBatchOracle) LabelBatch(ps []Pair) []Label {
	out := make([]Label, len(ps))
	var miss []Pair
	var missIdx []int
	for i, p := range ps {
		if l, ok := o.jrn.lookup(p.A, p.B); ok {
			out[i] = l
			o.jrn.countReplay()
		} else {
			miss = append(miss, p)
			missIdx = append(missIdx, i)
		}
	}
	if len(miss) == 0 {
		return out
	}
	ans := o.inner.LabelBatch(miss)
	if len(ans) != len(miss) {
		// Surface the inner oracle's wrong-length answer to the driver's
		// length check with its real count — except when that bogus count
		// equals the full batch size, which would pass the check with
		// misaligned answers; collapse that case to an empty reply.
		if len(ans) == len(ps) {
			return nil
		}
		return ans
	}
	for k, i := range missIdx {
		out[i] = ans[k]
		o.jrn.record(miss[k], ans[k])
	}
	return out
}

// journalPlatform short-circuits published pairs whose answers are already
// journaled — they are served from an internal FIFO without ever reaching
// the real platform — and records every answer the platform produces.
type journalPlatform struct {
	inner Platform
	jrn   *journalState
	// ready holds journaled answers for published pairs; head indexes the
	// next one to serve.
	ready       []Pair
	readyLabels []Label
	head        int
}

// Publish implements Platform. The replay FIFO is compacted in place
// before appending (instead of letting head crawl forward forever), so a
// long session never pins the served prefix of the backing arrays — the
// same fix the crowd platform's batching buffer got.
func (jp *journalPlatform) Publish(ps []Pair) {
	if jp.head > 0 {
		n := copy(jp.ready, jp.ready[jp.head:])
		jp.ready = jp.ready[:n]
		copy(jp.readyLabels, jp.readyLabels[jp.head:])
		jp.readyLabels = jp.readyLabels[:n]
		jp.head = 0
	}
	var fwd []Pair
	for _, p := range ps {
		if l, ok := jp.jrn.lookup(p.A, p.B); ok {
			jp.ready = append(jp.ready, p)
			jp.readyLabels = append(jp.readyLabels, l)
		} else {
			fwd = append(fwd, p)
		}
	}
	if len(fwd) > 0 {
		jp.inner.Publish(fwd)
	}
}

// NextLabel implements Platform: journaled answers drain first, in publish
// order, then the real platform is consulted.
func (jp *journalPlatform) NextLabel() (Pair, Label, bool) {
	if jp.head < len(jp.ready) {
		p, l := jp.ready[jp.head], jp.readyLabels[jp.head]
		jp.head++
		if jp.head == len(jp.ready) {
			// Fully drained: release the served entries now rather than
			// waiting for the next Publish to compact them away.
			jp.ready = jp.ready[:0]
			jp.readyLabels = jp.readyLabels[:0]
			jp.head = 0
		}
		jp.jrn.countReplay()
		return p, l, true
	}
	p, l, ok := jp.inner.NextLabel()
	if ok {
		jp.jrn.record(p, l)
	}
	return p, l, ok
}

// Available implements Platform.
func (jp *journalPlatform) Available() int {
	return len(jp.ready) - jp.head + jp.inner.Available()
}
